//! Integration tests of the cluster-replay layer: the qualitative
//! behaviours the paper's evaluation depends on must hold in the
//! simulator.

use cluster::{simulate, ClusterSpec, NetworkModel, Scheduler, TaskSpec};
use minihdfs::MiniDfs;
use spatialjoin::{IspMc, SpatialPredicate, SpatialSpark};

fn skewed_tasks(n: usize) -> Vec<TaskSpec> {
    // Heavy-tailed costs in *contiguous runs*, like a spatially ordered
    // file where hot regions are adjacent.
    (0..n)
        .map(|i| TaskSpec::of_cost(if (i / 16) % 8 == 0 { 2.0 } else { 0.05 }))
        .collect()
}

#[test]
fn dynamic_never_loses_to_static() {
    let tasks = skewed_tasks(512);
    for nodes in [2, 4, 8] {
        let spec = ClusterSpec::ec2_with_nodes(nodes);
        let dynamic = simulate(&tasks, &spec, Scheduler::Dynamic).makespan;
        let static_ = simulate(&tasks, &spec, Scheduler::StaticChunked).makespan;
        assert!(
            dynamic <= static_ + 1e-9,
            "dynamic {dynamic} must be <= static {static_} on {nodes} nodes"
        );
    }
}

#[test]
fn makespan_decreases_with_node_count_for_big_jobs() {
    let tasks: Vec<TaskSpec> = (0..4000).map(|_| TaskSpec::of_cost(0.5)).collect();
    let mut prev = f64::INFINITY;
    for nodes in [2, 4, 6, 8, 10] {
        let spec = ClusterSpec::ec2_with_nodes(nodes);
        let r = simulate(&tasks, &spec, Scheduler::Dynamic);
        assert!(r.makespan < prev, "makespan must shrink at {nodes} nodes");
        assert!(r.utilisation > 0.9, "uniform tasks should utilise well");
        prev = r.makespan;
    }
}

#[test]
fn static_scheduling_shows_imbalance_on_skew() {
    let tasks = skewed_tasks(512);
    let spec = ClusterSpec::ec2_with_nodes(8);
    let report = simulate(&tasks, &spec, Scheduler::StaticChunked);
    assert!(
        report.imbalance() > 1.2,
        "contiguous skew must show up as node imbalance, got {}",
        report.imbalance()
    );
}

#[test]
fn network_model_orders_systems_realistically() {
    let spark = NetworkModel::ec2_spark();
    let impala = NetworkModel::ec2_impala();
    // Spark pays more to start a job and coordinate stages.
    assert!(spark.job_startup_cost(10) > impala.job_startup_cost(10));
    assert!(spark.stage_coordination_cost(500) > impala.stage_coordination_cost(500));
    // But the wire itself is the same hardware.
    assert_eq!(spark.transfer_cost(1 << 20), impala.transfer_cost(1 << 20));
}

/// End-to-end: a real (small) join, replayed across the paper's node
/// sweep, behaves like Figs. 4-5 — runtimes do not explode with nodes,
/// and the ISP-MC standalone variant never costs more than the
/// engine-hosted run on the same machine.
#[test]
fn replayed_scalability_is_sane() {
    let dfs = MiniDfs::new(10, 16 * 1024).unwrap();
    datagen::write_dataset(&dfs, "/taxi", &datagen::taxi::geometries(20_000, 1)).unwrap();
    datagen::write_dataset(&dfs, "/nycb", &datagen::nycb::geometries(2_000, 1)).unwrap();

    let spark = SpatialSpark::new(sparklet::SparkConf::default(), dfs.clone());
    let srun = spark
        .broadcast_spatial_join("/taxi", "/nycb", SpatialPredicate::Within)
        .unwrap();
    let times: Vec<f64> = [4, 6, 8, 10]
        .iter()
        .map(|&n| srun.simulated_runtime(n))
        .collect();
    assert!(times.iter().all(|&t| t.is_finite() && t > 0.0));

    let ispmc = IspMc::new(
        impalite::ImpaladConf::default(),
        dfs,
        ("taxi", "/taxi"),
        ("nycb", "/nycb"),
    );
    let irun = ispmc
        .spatial_join("taxi", "nycb", SpatialPredicate::Within)
        .unwrap();
    assert!(irun.standalone_runtime() <= irun.simulated_runtime(1));
    for n in [4, 6, 8, 10] {
        assert!(irun.simulated_runtime(n).is_finite());
    }
}

#[test]
fn locality_scheduling_respects_block_placement() {
    // All tasks pinned to node 0 must leave other nodes idle.
    let tasks: Vec<TaskSpec> = (0..64)
        .map(|_| TaskSpec {
            cost: 1.0,
            locality: Some(0),
        })
        .collect();
    let spec = ClusterSpec::ec2_with_nodes(4);
    let r = simulate(&tasks, &spec, Scheduler::StaticLocality);
    assert_eq!(r.node_tasks[0], 64);
    assert_eq!(r.node_tasks[1..].iter().sum::<usize>(), 0);
    // Dynamic ignores locality and spreads the same work 4x faster.
    let d = simulate(&tasks, &spec, Scheduler::Dynamic);
    assert!(d.makespan < r.makespan / 2.0);
}
