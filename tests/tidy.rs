//! Tier-1 wiring for the in-tree `tidy` static-analysis suite.
//!
//! Two halves that pin opposite failure modes:
//!
//! * `tree_is_tidy` runs every check over the live workspace and
//!   requires zero findings — no false positives on the current tree.
//! * The `fixture_*` tests feed each seeded-violation file from
//!   `crates/tidy/fixtures/` through its check's per-file entry point
//!   and require exactly one finding — the checks actually fire.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tidy::lexer::SourceFile;

fn root() -> PathBuf {
    tidy::workspace_root().expect("tests run inside the workspace")
}

fn fixture(name: &str) -> SourceFile {
    let path = root().join("crates/tidy/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    tidy::lexer::lex(&text)
}

fn lock_order() -> Vec<String> {
    let text = std::fs::read_to_string(root().join("crates/tidy/lock_order.toml"))
        .expect("read lock_order.toml");
    tidy::checks::locks::parse_order(&text).expect("parse lock order manifest")
}

/// Asserts the findings list is a single finding naming the expected
/// check, carrying the fixture's path and a real line number — the
/// shape `cargo run -p tidy` would print.
fn assert_single(findings: &[tidy::Finding], check: &str, rel: &str) {
    assert_eq!(
        findings.len(),
        1,
        "expected one {check} finding, got {findings:?}"
    );
    let f = &findings[0];
    assert_eq!(f.check, check);
    assert_eq!(f.file, rel);
    assert!(f.line > 0, "finding must carry a line number: {f:?}");
    let rendered = f.to_string();
    assert!(
        rendered.contains(&format!("{check}: {rel}:{}", f.line)),
        "rendered finding must name check and file:line: {rendered}"
    );
}

#[test]
fn tree_is_tidy() {
    let tree = tidy::load_tree(&root()).expect("load workspace tree");
    let findings = tidy::run_all(&tree);
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "tidy found {} problem(s):\n{}",
        findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn fixture_alloc_in_region_trips_alloc_free() {
    let rel = "crates/tidy/fixtures/alloc_in_region.rs";
    let findings = tidy::checks::alloc_free::check_file(rel, &fixture("alloc_in_region.rs"));
    assert_single(&findings, "alloc-free", rel);
    assert!(findings[0].message.contains(".to_vec()"));
}

#[test]
fn fixture_obs_counters_pass_alloc_free() {
    let rel = "crates/tidy/fixtures/obs_counters.rs";
    let findings = tidy::checks::alloc_free::check_file(rel, &fixture("obs_counters.rs"));
    assert!(
        findings.is_empty(),
        "obs counter bumps must stay legal inside alloc-free regions: {findings:?}"
    );
}

#[test]
fn fixture_panic_site_trips_the_ratchet() {
    let rel = "crates/tidy/fixtures/panic_site.rs";
    let count = tidy::checks::panics::count_file(&fixture("panic_site.rs"));
    assert_eq!(
        count, 1,
        "one non-test panic site (the test-module unwrap is exempt)"
    );
    let current = BTreeMap::from([(rel.to_string(), count)]);
    let findings = tidy::checks::panics::compare(&current, &BTreeMap::new());
    // Ratchet findings are per-file, not per-line, so no line assert.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, "panic-ratchet");
    assert_eq!(findings[0].file, rel);
    assert!(
        findings[0].message.contains("allows 0"),
        "{:?}",
        findings[0]
    );
}

#[test]
fn fixture_lock_across_send_trips_lock_discipline() {
    let rel = "crates/tidy/fixtures/lock_across_send.rs";
    let findings =
        tidy::checks::locks::check_file(rel, &fixture("lock_across_send.rs"), &lock_order());
    assert_single(&findings, "lock-discipline", rel);
    assert!(findings[0].message.contains(".send("), "{:?}", findings[0]);
}

#[test]
fn fixture_lock_order_swap_trips_lock_discipline() {
    let rel = "crates/tidy/fixtures/lock_order_swap.rs";
    let findings =
        tidy::checks::locks::check_file(rel, &fixture("lock_order_swap.rs"), &lock_order());
    assert_single(&findings, "lock-discipline", rel);
    assert!(findings[0].message.contains("order"), "{:?}", findings[0]);
}

#[test]
fn fixture_float_eq_trips_float_eq() {
    let rel = "crates/tidy/fixtures/float_eq.rs";
    let findings = tidy::checks::float_eq::check_file(rel, &fixture("float_eq.rs"));
    assert_single(&findings, "float-eq", rel);
}

#[test]
fn fixture_unsafe_undoc_trips_unsafe_audit() {
    let rel = "crates/tidy/fixtures/unsafe_undoc.rs";
    let findings = tidy::checks::unsafe_audit::check_file(rel, &fixture("unsafe_undoc.rs"));
    assert_single(&findings, "unsafe", rel);
}

#[test]
fn fixture_bad_manifest_trips_deps() {
    let rel = "crates/tidy/fixtures/bad_manifest.toml";
    let text = std::fs::read_to_string(root().join(rel)).expect("read fixture manifest");
    let findings = tidy::checks::deps::check_manifest(rel, &text);
    assert_single(&findings, "deps", rel);
    assert!(findings[0].message.contains("serde"), "{:?}", findings[0]);
}

#[test]
fn baseline_parses_and_stays_burned_down() {
    let text = std::fs::read_to_string(root().join(tidy::baseline::BASELINE_PATH))
        .expect("baseline file exists");
    let counts = tidy::baseline::parse(&text).expect("baseline parses");
    // The ratchet is fully burned down: library code contains no
    // panic sites, and the empty baseline keeps it that way (any new
    // site fails the check rather than joining a grandfather list).
    assert!(
        counts.is_empty(),
        "panic-ratchet baseline regressed: {counts:?}"
    );
}
