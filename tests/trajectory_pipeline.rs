//! End-to-end trajectory pipeline: generation → DFS → parse → join →
//! aggregate, plus interactions with simplification.

use geom::algorithms::simplify::simplify_linestring;
use geom::{HasEnvelope, Polygon, Trajectory};
use minihdfs::MiniDfs;
use spatialjoin::trajectory::{parse_trajectory_records, trajectory_zone_join, zone_dwell_times};

#[test]
fn trajectories_survive_dfs_round_trip() {
    let dfs = MiniDfs::new(4, 8 * 1024).unwrap();
    let records = datagen::trips::trip_records(800, 71);
    dfs.write_lines("/trips", &records).unwrap();
    let back = parse_trajectory_records(&dfs.read_all_lines("/trips").unwrap());
    assert_eq!(back.len(), 800);
    for (i, (id, t)) in back.iter().enumerate() {
        assert_eq!(*id, i as i64);
        assert!(t.duration() > 0.0);
    }
}

#[test]
fn join_respects_zone_geometry_not_just_envelopes() {
    // An L-shaped trajectory whose envelope covers a zone it never
    // enters: the join must reject it.
    let traj = Trajectory::new(
        geom::LineString::new(vec![0.0, 0.0, 10.0, 0.0, 10.0, 10.0]).unwrap(),
        vec![0.0, 10.0, 20.0],
    )
    .unwrap();
    let corner_zone = Polygon::rectangle(geom::Envelope::new(1.0, 5.0, 4.0, 9.0));
    assert!(traj.envelope().intersects(&corner_zone.envelope()));
    assert!(!traj.passes_through(&corner_zone));
    let pairs = trajectory_zone_join(&[(0, traj)], &[(0, corner_zone)]);
    assert!(pairs.is_empty());
}

#[test]
fn dwell_times_total_at_most_trip_durations() {
    let records = datagen::trips::trip_records(300, 73);
    let trips = parse_trajectory_records(&records);
    let zones: Vec<(i64, Polygon)> = datagen::nycb::polygons(400, 73)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    let dwell = zone_dwell_times(&trips, &zones);
    let total_dwell: f64 = dwell.iter().map(|(_, s)| s).sum();
    let total_duration: f64 = trips.iter().map(|(_, t)| t.duration()).sum();
    // Zones tile the city without overlap, so time in zones can never
    // exceed time travelled (sampling error stays within the bound
    // because the estimate is a convex combination per segment).
    assert!(
        total_dwell <= total_duration * 1.001,
        "dwell {total_dwell} vs duration {total_duration}"
    );
    assert!(total_dwell > 0.0);
}

#[test]
fn simplified_trajectories_keep_their_zone_crossings_mostly() {
    let records = datagen::trips::trip_records(200, 79);
    let trips = parse_trajectory_records(&records);
    let zones: Vec<(i64, Polygon)> = datagen::nycb::polygons(200, 79)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as i64, p))
        .collect();
    let before = trajectory_zone_join(&trips, &zones).len();

    let simplified: Vec<(i64, Trajectory)> = trips
        .iter()
        .map(|(id, t)| {
            let path = simplify_linestring(t.path(), 25.0).unwrap();
            // Resample timestamps uniformly over the simplified path.
            let times: Vec<f64> = (0..path.num_points())
                .map(|i| i as f64 * t.duration() / (path.num_points().max(2) - 1) as f64)
                .collect();
            (*id, Trajectory::new(path, times).unwrap())
        })
        .collect();
    let after = trajectory_zone_join(&simplified, &zones).len();
    // 25 ft tolerance against ~500 ft blocks: crossings barely change.
    let drift = (before as f64 - after as f64).abs() / before.max(1) as f64;
    assert!(
        drift < 0.05,
        "crossings drifted {drift:.2} ({before} -> {after})"
    );
}
